/**
 * @file
 * Implementation of the clock estimator.
 */

#include "vlsi/clock.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace cesp::vlsi {

double
StageDelays::criticalPs() const
{
    return std::max({rename, window(), bypass});
}

std::string
StageDelays::criticalStage() const
{
    double c = criticalPs();
    if (c == window())
        return "window";
    if (c == rename)
        return "rename";
    return "bypass";
}

ClockEstimator::ClockEstimator(Process p)
    : process_(p), rename_(p), wakeup_(p), select_(p), bypass_(p),
      resv_(p), regfile_(p), dcache_(p)
{
}

StageDelays
ClockEstimator::delays(const ClockConfig &cfg) const
{
    if (cfg.num_clusters < 1)
        fatal("clock estimator: %d clusters", cfg.num_clusters);

    StageDelays d{};
    // Rename (with steering hidden behind the map-table access, per
    // Section 5.3) is machine-wide regardless of clustering.
    d.rename = rename_.totalPs(cfg.issue_width);

    int cluster_width = cfg.issue_width / cfg.num_clusters;
    cluster_width = std::max(cluster_width, 1);

    switch (cfg.org) {
      case IssueOrganization::CentralWindow:
        // Tags from all result buses are broadcast over the window.
        d.window_wakeup =
            wakeup_.totalPs(cfg.issue_width, cfg.window_size);
        d.window_select = select_.totalPs(cfg.window_size);
        break;
      case IssueOrganization::DependenceFifos:
        // Only the FIFO heads interrogate the reservation table; the
        // selection tree spans the heads of one cluster's FIFOs.
        d.window_wakeup =
            resv_.totalPs(cluster_width, cfg.phys_regs);
        d.window_select =
            select_.totalPs(std::max(cfg.fifos_per_cluster, 2));
        break;
    }

    // Bypass wires span one cluster's functional units.
    d.bypass = bypass_.totalPs(cluster_width);
    return d;
}

std::vector<ClockEstimator::StructureDelay>
ClockEstimator::fullReport(const ClockConfig &cfg,
                           uint32_t dcache_bytes, int dcache_assoc,
                           uint32_t dcache_line) const
{
    StageDelays d = delays(cfg);
    int cluster_width =
        std::max(cfg.issue_width / cfg.num_clusters, 1);
    std::vector<StructureDelay> out;
    out.push_back({"rename", d.rename, true});
    out.push_back({cfg.org == IssueOrganization::DependenceFifos
                       ? "reservation table" : "window wakeup",
                   d.window_wakeup, false});
    out.push_back({"selection", d.window_select, false});
    out.push_back({"bypass (local)", d.bypass, false});
    out.push_back({"register file read",
                   regfile_.machinePs(cluster_width, cfg.phys_regs),
                   true});
    out.push_back({"dcache access",
                   dcache_.totalPs(dcache_bytes, dcache_assoc,
                                   dcache_line),
                   true});
    return out;
}

double
ClockEstimator::dependenceClockRatio(int issue_width,
                                     int window_size) const
{
    // Section 5.5: clk_dep / clk_win >=
    //   (Twakeup + Tselect)(IW, WS) / (Twakeup + Tselect)(IW/2, WS/2).
    double win = wakeup_.totalPs(issue_width, window_size) +
        select_.totalPs(window_size);
    double dep = wakeup_.totalPs(issue_width / 2, window_size / 2) +
        select_.totalPs(window_size / 2);
    return win / dep;
}

} // namespace cesp::vlsi
