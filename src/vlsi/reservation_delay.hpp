/**
 * @file
 * Reservation-table delay model (paper Section 5.3, Table 4).
 *
 * In the dependence-based microarchitecture the broadcast wakeup CAM
 * is replaced by a small RAM of reservation bits, one per physical
 * register, interrogated only by the instructions at the FIFO heads.
 * The table is laid out as ceil(P/8) entries of 8 bits with a column
 * MUX (the paper's example: 80 physical registers -> a 10-entry table
 * of 8 bits). Access delay is modeled as
 *
 *   Tresv = r0 + r1 * entries + r2 * IW
 *
 * calibrated at 0.18 um to Table 4: 192.1 ps (4-way, 80 registers) and
 * 251.7 ps (8-way, 128 registers); other technologies scale by the
 * rename-delay ratio since both are small multi-ported RAM accesses.
 */

#ifndef CESP_VLSI_RESERVATION_DELAY_HPP
#define CESP_VLSI_RESERVATION_DELAY_HPP

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Calibrated reservation-table delay model for one technology. */
class ReservationDelayModel
{
  public:
    explicit ReservationDelayModel(Process p);

    /** Number of 8-bit table entries for a physical register count. */
    static int tableEntries(int phys_regs);

    /**
     * Access delay in ps for the given issue width and physical
     * register count.
     */
    double totalPs(int issue_width, int phys_regs) const;

    Process process() const { return process_; }

  private:
    Process process_;
    double scale_; //!< technology scaling relative to 0.18 um
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_RESERVATION_DELAY_HPP
