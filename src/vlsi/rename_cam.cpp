/**
 * @file
 * Implementation of the CAM rename delay model.
 */

#include "vlsi/rename_cam.hpp"

#include "common/logging.hpp"
#include "vlsi/rename_delay.hpp"

namespace cesp::vlsi {

namespace {

// 0.18 um coefficients (see header for the calibration targets).
constexpr double kDrivePerEntryBase = 0.3;  // ps per CAM entry
constexpr double kDrivePerEntryPort = 0.05; // extra per issue port
constexpr double kMatchBase = 60.0;
constexpr double kMatchPerPort = 8.0;
constexpr double kReadBase = 120.0;
constexpr double kReadPerPort = 10.0;
constexpr double kReadPerEntry = 0.3; // match-line OR over entries

} // namespace

RenameCamDelayModel::RenameCamDelayModel(Process p) : process_(p)
{
    // Like the RAM map table, the CAM is a small multi-ported array;
    // scale across technologies with the RAM rename model.
    RenameDelayModel here(p), base(Process::um0_18);
    scale_ = here.totalPs(4) / base.totalPs(4);
}

RenameCamDelay
RenameCamDelayModel::delay(int issue_width, int phys_regs) const
{
    if (issue_width < 1 || issue_width > 16)
        fatal("CAM rename model: issue width %d outside [1, 16]",
              issue_width);
    if (phys_regs < 32 || phys_regs > 1024)
        fatal("CAM rename model: %d physical registers outside "
              "[32, 1024]", phys_regs);
    double iw = issue_width;
    double p = phys_regs;
    RenameCamDelay d;
    d.tag_drive =
        scale_ * (kDrivePerEntryBase + kDrivePerEntryPort * iw) * p;
    d.tag_match = scale_ * (kMatchBase + kMatchPerPort * iw);
    d.read = scale_ *
        (kReadBase + kReadPerPort * iw + kReadPerEntry * p);
    return d;
}

} // namespace cesp::vlsi
