/**
 * @file
 * Operand bypass delay model (paper Section 4.4, Table 1).
 *
 * Bypass delay is dominated by the distributed-RC delay of the result
 * wires: Tbypass = 0.5 * Rmetal * Cmetal * L^2 (Section 4.4.2). The
 * result-wire length is set by the layout: functional units stacked
 * around the register file, giving a length that grows quadratically
 * with issue width (the register file height itself grows with port
 * count). The length model
 *
 *   L(IW) = 4125 * IW + 250 * IW^2   [lambda]
 *
 * passes exactly through the paper's extracted lengths (Table 1:
 * 20500 lambda at 4-way, 49000 lambda at 8-way); with the calibrated
 * metal RC this reproduces 184.9 ps and 1056.4 ps in every technology
 * (wire delay does not improve with feature size under the paper's
 * scaling model). The model also reports the number of bypass paths,
 * IW^2 * 2 * S for S pipestages past the first result-producing stage
 * (Section 4.4, citing Ahuja et al.).
 */

#ifndef CESP_VLSI_BYPASS_DELAY_HPP
#define CESP_VLSI_BYPASS_DELAY_HPP

#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Calibrated bypass delay model for one technology. */
class BypassDelayModel
{
  public:
    explicit BypassDelayModel(Process p) : tech_(technology(p)) {}
    explicit BypassDelayModel(const Technology &t) : tech_(t) {}

    /** Result-wire length in lambda for the given issue width. */
    static double wireLengthLambda(int issue_width);

    /** Result-wire length in microns. */
    double
    wireLengthUm(int issue_width) const
    {
        return tech_.lambdaToUm(wireLengthLambda(issue_width));
    }

    /** Bypass (result-wire) delay in ps. */
    double totalPs(int issue_width) const;

    /**
     * Number of bypass paths for a machine with the given issue width
     * and the given number of pipestages after the first result-
     * producing stage, assuming 2-input functional units.
     */
    static int numBypassPaths(int issue_width, int stages_after_result);

    const Technology &tech() const { return tech_; }

  private:
    Technology tech_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_BYPASS_DELAY_HPP
