/**
 * @file
 * Calibrated anchors for the rename delay model.
 *
 * Anchor provenance (all from the paper):
 *  - totals at issue width 4 and 8 per technology are Table 2's rename
 *    column: 1577.9/1710.5 ps (0.8 um), 627.2/726.6 ps (0.35 um),
 *    351.0/427.9 ps (0.18 um);
 *  - the 2-wide totals and the component split follow Figure 3:
 *    bitline is the largest component (bitline length tracks the 32
 *    logical registers, wordline tracks the <8-bit physical register
 *    designator), and the bitline delay increase from 2- to 8-wide
 *    worsens from 37% to 53% as the feature size shrinks from 0.8 um
 *    to 0.18 um (Section 4.1.3).
 */

#include "vlsi/rename_delay.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

/// Anchor issue widths shared by all technologies and components.
const std::array<double, 3> kIw = {2.0, 4.0, 8.0};

struct Anchors
{
    std::array<double, 3> decode, wordline, bitline, senseamp;
};

Anchors
anchorsFor(Process p)
{
    switch (p) {
      case Process::um0_8:
        return {
            {443.0, 445.0, 449.0},   // decode
            {270.0, 272.0, 276.0},   // wordline
            {480.0, 535.0, 657.6},   // bitline: +37% from 2- to 8-wide
            {324.9, 325.9, 327.9},   // sense amp
        };
      case Process::um0_35:
        return {
            {158.0, 165.0, 179.0},
            {100.0, 105.0, 116.0},
            {205.0, 233.0, 297.0},   // +44.9%
            {119.2, 124.2, 134.6},
        };
      case Process::um0_18:
        return {
            {86.0, 92.0, 104.0},
            {56.0, 61.0, 71.0},
            {115.0, 133.0, 176.0},   // +53%
            {61.0, 65.0, 76.9},
        };
    }
    panic("unknown process id %d", static_cast<int>(p));
}

} // namespace

RenameDelayModel::RenameDelayModel(Process p) : process_(p)
{
    Anchors a = anchorsFor(p);
    decode_ = Quad1D(kIw, a.decode);
    wordline_ = Quad1D(kIw, a.wordline);
    bitline_ = Quad1D(kIw, a.bitline);
    senseamp_ = Quad1D(kIw, a.senseamp);
}

double
RenameDelayModel::dependenceCheckPs(int issue_width) const
{
    if (issue_width < 1 || issue_width > 16)
        fatal("rename dependence check: issue width %d outside "
              "[1, 16]", issue_width);
    // Comparator columns grow as IW*(IW-1)/2 and the priority mux
    // deepens with the group; quadratic with coefficients chosen so
    // the check hides behind the map table at 2/4/8-wide (the
    // paper's finding) and emerges at 16.
    double iw = issue_width;
    double base = 100.0 + 15.0 * iw + 2.2 * iw * iw;
    return base * technology(process_).logic_scale;
}

RenameDelay
RenameDelayModel::delay(int issue_width) const
{
    if (issue_width < 1 || issue_width > 16)
        fatal("rename delay model: issue width %d outside [1, 16]",
              issue_width);
    double iw = issue_width;
    return {decode_(iw), wordline_(iw), bitline_(iw), senseamp_(iw)};
}

} // namespace cesp::vlsi
