/**
 * @file
 * Implementation of the reservation-table delay model.
 */

#include "vlsi/reservation_delay.hpp"

#include "common/logging.hpp"
#include "vlsi/rename_delay.hpp"

namespace cesp::vlsi {

namespace {

// Calibrated at 0.18 um to Table 4 (192.1 ps at {4-way, 80 regs},
// 251.7 ps at {8-way, 128 regs}).
constexpr double kR0 = 108.77; // fixed decode + sense overhead
constexpr double kR1 = 5.933;  // per table entry (wordline/bitline)
constexpr double kR2 = 6.0;    // per issue-width port

} // namespace

ReservationDelayModel::ReservationDelayModel(Process p) : process_(p)
{
    // Both the reservation table and the rename map table are small
    // multi-ported RAMs; scale across technologies with the rename
    // model's 4-wide total.
    RenameDelayModel here(p), base(Process::um0_18);
    scale_ = here.totalPs(4) / base.totalPs(4);
}

int
ReservationDelayModel::tableEntries(int phys_regs)
{
    if (phys_regs < 1)
        fatal("reservation table: physical register count %d < 1",
              phys_regs);
    return (phys_regs + 7) / 8;
}

double
ReservationDelayModel::totalPs(int issue_width, int phys_regs) const
{
    if (issue_width < 1 || issue_width > 16)
        fatal("reservation table: issue width %d outside [1, 16]",
              issue_width);
    int entries = tableEntries(phys_regs);
    return scale_ * (kR0 + kR1 * entries + kR2 * issue_width);
}

} // namespace cesp::vlsi
