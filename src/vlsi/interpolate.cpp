/**
 * @file
 * Implementation of the Lagrange interpolation helpers.
 */

#include "vlsi/interpolate.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

/** Lagrange basis quadratic L_i(x) for anchor triple xs. */
double
basis(const std::array<double, 3> &xs, int i, double x)
{
    double num = 1.0, den = 1.0;
    for (int j = 0; j < 3; ++j) {
        if (j == i)
            continue;
        num *= x - xs[j];
        den *= xs[i] - xs[j];
    }
    return num / den;
}

} // namespace

Quad1D::Quad1D(const std::array<double, 3> &xs,
               const std::array<double, 3> &ys)
{
    for (int i = 0; i < 3; ++i)
        for (int j = i + 1; j < 3; ++j)
            if (xs[i] == xs[j])
                panic("Quad1D anchors must be distinct");

    // Expand sum of Lagrange terms into a + b*x + c*x^2.
    for (int i = 0; i < 3; ++i) {
        int j = (i + 1) % 3, k = (i + 2) % 3;
        double den = (xs[i] - xs[j]) * (xs[i] - xs[k]);
        double w = ys[i] / den;
        c_ += w;
        b_ -= w * (xs[j] + xs[k]);
        a_ += w * xs[j] * xs[k];
    }
}

double
Quad1D::operator()(double x) const
{
    return a_ + b_ * x + c_ * x * x;
}

Quad2D::Quad2D(const std::array<double, 3> &xs,
               const std::array<double, 3> &ys,
               const std::array<std::array<double, 3>, 3> &zs)
    : xs_(xs), ys_(ys), zs_(zs)
{
}

double
Quad2D::operator()(double x, double y) const
{
    double v = 0.0;
    for (int i = 0; i < 3; ++i) {
        double lx = basis(xs_, i, x);
        for (int j = 0; j < 3; ++j)
            v += zs_[i][j] * lx * basis(ys_, j, y);
    }
    return v;
}

} // namespace cesp::vlsi
