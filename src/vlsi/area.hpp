/**
 * @file
 * Transistor-count estimates for the issue-logic structures.
 *
 * The paper measures complexity as critical-path delay, noting that
 * it "can be variously quantified in terms such as number of
 * transistors, die area, and power dissipated" (Section 1). This
 * module supplies the transistor-count view for the structures the
 * dependence-based microarchitecture changes, using standard CMOS
 * cell costs (6T SRAM cell + 2T per extra port pair, 10T per CAM
 * tag-bit comparator, ~16T per arbiter cell):
 *
 *  - a W-entry wakeup CAM with IW result-tag ports,
 *  - the selection arbiter tree over W requesters,
 *  - the reservation table (one bit per physical register),
 *  - the FIFO storage and head/tail management.
 *
 * The punchline matches the delay view: the dependence-based window
 * logic is nearly an order of magnitude smaller than the CAM window
 * it replaces (bench/abl_transistors).
 */

#ifndef CESP_VLSI_AREA_HPP
#define CESP_VLSI_AREA_HPP

#include <cstdint>

namespace cesp::vlsi {

/** Transistor-count estimates (device counts, not um^2). */
class AreaModel
{
  public:
    /** Bits in one issue-window entry's payload (opcode, regs...). */
    static constexpr int kEntryPayloadBits = 64;
    /** Bits per operand tag (physical register designator). */
    static constexpr int kTagBits = 8;

    /**
     * Wakeup CAM: per entry, two operand tags with IW comparators
     * each plus the payload RAM; buffers drive IW tag buses.
     */
    static uint64_t wakeupCam(int window_size, int issue_width);

    /** Selection tree of 4-input arbiters over the window. */
    static uint64_t selectTree(int window_size);

    /** Reservation table: 1 bit per physical register, IW ports. */
    static uint64_t reservationTable(int phys_regs, int issue_width);

    /**
     * FIFO buffers: payload RAM plus head/tail pointers; no
     * comparators (the whole point).
     */
    static uint64_t fifoBuffers(int num_fifos, int depth);

    /** Window-based issue logic: CAM + select. */
    static uint64_t
    windowIssueLogic(int window_size, int issue_width)
    {
        return wakeupCam(window_size, issue_width) +
            selectTree(window_size);
    }

    /** Dependence-based issue logic: FIFOs + reservation + select. */
    static uint64_t
    dependenceIssueLogic(int num_fifos, int depth, int phys_regs,
                         int issue_width)
    {
        return fifoBuffers(num_fifos, depth) +
            reservationTable(phys_regs, issue_width) +
            selectTree(num_fifos < 2 ? 2 : num_fifos);
    }
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_AREA_HPP
