/**
 * @file
 * Register rename delay model (paper Section 4.1, Figure 3, Table 2).
 *
 * The rename logic is a multi-ported RAM map table (the RAM scheme of
 * the MIPS R10000) plus dependence-check logic that is hidden behind
 * the map-table access for issue widths up to 8. Its delay decomposes
 * into decoder, wordline, bitline, and sense-amplifier components
 * (Trename = Tdecode + Twordline + Tbitline + Tsenseamp); window size
 * does not enter, and issue width enters through wire lengths, making
 * each component effectively linear in issue width with a small
 * quadratic term (Section 4.1.2).
 *
 * Each component is the quadratic through calibrated anchors at issue
 * widths 2/4/8 per technology; the anchors reproduce Table 2's totals
 * (1577.9/1710.5, 627.2/726.6, 351.0/427.9 ps) and Figure 3's trends
 * (bitline grows faster than wordline; the 2-to-8-way bitline delay
 * increase worsens from 37% at 0.8 um to 53% at 0.18 um).
 */

#ifndef CESP_VLSI_RENAME_DELAY_HPP
#define CESP_VLSI_RENAME_DELAY_HPP

#include "vlsi/interpolate.hpp"
#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of the rename-logic critical path, in ps. */
struct RenameDelay
{
    double decode;
    double wordline;
    double bitline;
    double senseamp;

    double
    total() const
    {
        return decode + wordline + bitline + senseamp;
    }
};

/** Calibrated rename delay model for one technology. */
class RenameDelayModel
{
  public:
    explicit RenameDelayModel(Process p);

    /**
     * Delay breakdown for the given issue width (number of
     * instructions renamed per cycle). Valid for issue widths in
     * [1, 16]; anchored at 2, 4, and 8.
     */
    RenameDelay delay(int issue_width) const;

    /** Total rename delay in ps. */
    double
    totalPs(int issue_width) const
    {
        return delay(issue_width).total();
    }

    /**
     * Delay of the dependence-check logic that runs in parallel with
     * the map-table access (Section 4.1): every logical source is
     * compared against the logical destinations of all earlier
     * instructions in the rename group (IW*(IW-1)/2 comparator
     * columns feeding a priority mux of depth ~IW). The paper found
     * it hidden behind the map table for issue widths of 2, 4, and 8;
     * this model reproduces that and shows it emerging from hiding as
     * the group grows (dependenceCheckHidden(16) is false at
     * 0.18 um).
     */
    double dependenceCheckPs(int issue_width) const;

    /** True if the check fits under the map-table access. */
    bool
    dependenceCheckHidden(int issue_width) const
    {
        return dependenceCheckPs(issue_width) <= totalPs(issue_width);
    }

    Process process() const { return process_; }

  private:
    Process process_;
    Quad1D decode_, wordline_, bitline_, senseamp_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_RENAME_DELAY_HPP
