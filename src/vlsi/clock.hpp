/**
 * @file
 * Pipeline critical-path / clock estimator (paper Sections 4.5, 5.3,
 * 5.5). Combines the per-structure delay models into per-stage delays
 * for a given machine organization and reports the critical stage and
 * the resulting clock.
 *
 * The paper's comparisons reproduced here:
 *  - Table 2 rows: rename vs wakeup+select vs bypass for {4-way, 32}
 *    and {8-way, 64} in each technology;
 *  - Section 5.3: with window logic simplified to a reservation-table
 *    access, rename becomes the critical stage of a 4-way machine, a
 *    potential clock improvement of up to ~39% at 0.18 um;
 *  - Section 5.5: the clustered dependence-based 8-way machine clocks
 *    at least as fast as a 4-way 32-entry window machine, i.e.
 *    724.0 / 578.0 = ~1.25x faster than the 8-way window machine.
 */

#ifndef CESP_VLSI_CLOCK_HPP
#define CESP_VLSI_CLOCK_HPP

#include <string>
#include <vector>

#include "vlsi/bypass_delay.hpp"
#include "vlsi/cache_delay.hpp"
#include "vlsi/regfile_delay.hpp"
#include "vlsi/rename_delay.hpp"
#include "vlsi/reservation_delay.hpp"
#include "vlsi/select_delay.hpp"
#include "vlsi/technology.hpp"
#include "vlsi/wakeup_delay.hpp"

namespace cesp::vlsi {

/** Issue-logic organization of the machine being estimated. */
enum class IssueOrganization
{
    CentralWindow,   //!< flexible issue window (wakeup CAM + select)
    DependenceFifos, //!< FIFO heads + reservation table + select
};

/** Machine shape for clock estimation. */
struct ClockConfig
{
    IssueOrganization org = IssueOrganization::CentralWindow;
    int issue_width = 8;   //!< machine-wide issue/rename width
    int window_size = 64;  //!< window entries (central window org)
    int num_clusters = 1;  //!< execution clusters
    int fifos_per_cluster = 8; //!< FIFO count (FIFO org)
    int phys_regs = 120;   //!< physical registers per class
};

/** Per-stage delay summary, in ps. */
struct StageDelays
{
    double rename;        //!< rename (steering runs in parallel)
    double window_wakeup; //!< CAM wakeup or reservation-table access
    double window_select; //!< selection tree
    double bypass;        //!< local (intra-cluster) result wires

    double window() const { return window_wakeup + window_select; }

    /** Longest stage delay = clock period. */
    double criticalPs() const;

    /** Name of the critical stage ("rename"/"window"/"bypass"). */
    std::string criticalStage() const;

    /** Clock frequency in MHz implied by the critical path. */
    double
    clockMhz() const
    {
        return 1e6 / criticalPs();
    }
};

/** Clock estimator for one technology. */
class ClockEstimator
{
  public:
    explicit ClockEstimator(Process p);

    /** Per-stage delays for the given machine shape. */
    StageDelays delays(const ClockConfig &cfg) const;

    /**
     * The paper's conservative Section 5.5 clock ratio: the clustered
     * dependence-based machine of total width `issue_width` is clocked
     * like a window machine of one cluster's width with a
     * (window_size/2)-entry window; the ratio over the full-width
     * window machine is returned (1.2526 for 8-way at 0.18 um).
     */
    double dependenceClockRatio(int issue_width, int window_size) const;

    /** One structure's entry in the full complexity report. */
    struct StructureDelay
    {
        std::string name;
        double ps;
        /**
         * Whether the paper considers the structure pipelinable
         * (Section 4.5: everything except the wakeup+select loop and
         * the bypass can be pipelined without breaking back-to-back
         * dependent execution).
         */
        bool pipelinable;
    };

    /**
     * Delay of every modeled structure for the given machine shape —
     * the Section 4.5 discussion as a table: rename, window logic,
     * bypass, register file read, and data-cache access.
     */
    std::vector<StructureDelay>
    fullReport(const ClockConfig &cfg,
               uint32_t dcache_bytes = 32 * 1024,
               int dcache_assoc = 2,
               uint32_t dcache_line = 32) const;

    Process process() const { return process_; }

  private:
    Process process_;
    RenameDelayModel rename_;
    WakeupDelayModel wakeup_;
    SelectDelayModel select_;
    BypassDelayModel bypass_;
    ReservationDelayModel resv_;
    RegfileDelayModel regfile_;
    CacheDelayModel dcache_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_CLOCK_HPP
