/**
 * @file
 * Quadratic (Lagrange) interpolation helpers used to evaluate the
 * calibrated delay models between / slightly beyond their anchor
 * points.
 *
 * The paper reduces every Hspice-measured delay to a low-order
 * polynomial in issue width IW and window size WS (Sections 4.1.2,
 * 4.2.2: c0 + c1*IW + c2*IW^2, and quadratic-in-WS tag drive). We
 * therefore represent each calibrated curve as the unique quadratic
 * through its three published anchor points (Quad1D), and each
 * calibrated surface as the tensor-product quadratic through its
 * 3x3 anchor grid (Quad2D). Evaluating at an anchor reproduces the
 * paper's number exactly; evaluating elsewhere interpolates with the
 * paper's own functional form.
 */

#ifndef CESP_VLSI_INTERPOLATE_HPP
#define CESP_VLSI_INTERPOLATE_HPP

#include <array>

namespace cesp::vlsi {

/** The unique quadratic a + b*x + c*x^2 through three (x, y) points. */
class Quad1D
{
  public:
    Quad1D() = default;

    /** Construct from three distinct abscissae and their values. */
    Quad1D(const std::array<double, 3> &xs,
           const std::array<double, 3> &ys);

    /** Evaluate the quadratic at x (interpolation or extrapolation). */
    double operator()(double x) const;

    double coeffA() const { return a_; } //!< constant term
    double coeffB() const { return b_; } //!< linear term
    double coeffC() const { return c_; } //!< quadratic term

  private:
    double a_ = 0.0, b_ = 0.0, c_ = 0.0;
};

/**
 * Tensor-product quadratic surface through a 3x3 grid of anchors:
 * f(x, y) = sum_{i,j} z[i][j] * Lx_i(x) * Ly_j(y), where Lx/Ly are the
 * Lagrange basis quadratics of the x- and y-anchor triples. Exact at
 * all nine anchors; quadratic in each variable elsewhere.
 */
class Quad2D
{
  public:
    Quad2D() = default;

    /**
     * @param xs the three x anchors (e.g. issue widths 2, 4, 8)
     * @param ys the three y anchors (e.g. window sizes 16, 32, 64)
     * @param zs zs[i][j] = value at (xs[i], ys[j])
     */
    Quad2D(const std::array<double, 3> &xs,
           const std::array<double, 3> &ys,
           const std::array<std::array<double, 3>, 3> &zs);

    /** Evaluate the surface at (x, y). */
    double operator()(double x, double y) const;

  private:
    std::array<double, 3> xs_{}, ys_{};
    std::array<std::array<double, 3>, 3> zs_{};
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_INTERPOLATE_HPP
