/**
 * @file
 * Calibrated anchors for the wakeup delay model. See the header for
 * the list of paper data points each grid reproduces.
 */

#include "vlsi/wakeup_delay.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

const std::array<double, 3> kIw = {2.0, 4.0, 8.0};
const std::array<double, 3> kWs = {16.0, 32.0, 64.0};

struct Params
{
    std::array<std::array<double, 3>, 3> totals; // [iw][ws]
    double m0, m1, m2; // tag match = m0 + m1*IW + m2*WS
    double o0, o1;     // match OR = o0 + o1*IW
};

Params
paramsFor(Process p)
{
    switch (p) {
      case Process::um0_8:
        return {
            {{{480.0, 510.0, 572.0},
              {630.0, 649.7, 766.0},     // (4,32) = Table 2
              {909.2, 972.4, 1115.4}}},  // (8,64) = Table 2
            120.0, 22.0, 0.2,
            180.0, 45.0,
        };
      case Process::um0_35:
        return {
            {{{215.0, 238.0, 290.0},
              {280.0, 330.1, 388.0},
              {405.0, 455.0, 566.5}}},
            55.0, 10.0, 0.1,
            78.0, 19.0,
        };
      case Process::um0_18:
        return {
            {{{128.0, 150.0, 178.9},
              {160.0, 204.0, 239.7},
              {235.0, 270.0, 350.0}}},
            30.0, 6.0, 0.05,
            40.0, 10.0,
        };
    }
    panic("unknown process id %d", static_cast<int>(p));
}

} // namespace

WakeupDelayModel::WakeupDelayModel(Process p) : process_(p)
{
    Params prm = paramsFor(p);
    total_ = Quad2D(kIw, kWs, prm.totals);
    m0_ = prm.m0;
    m1_ = prm.m1;
    m2_ = prm.m2;
    o0_ = prm.o0;
    o1_ = prm.o1;
}

WakeupDelay
WakeupDelayModel::delay(int issue_width, int window_size) const
{
    if (issue_width < 1 || issue_width > 16)
        fatal("wakeup delay model: issue width %d outside [1, 16]",
              issue_width);
    if (window_size < 8 || window_size > 128)
        fatal("wakeup delay model: window size %d outside [8, 128]",
              window_size);

    double iw = issue_width;
    double ws = window_size;
    double total = total_(iw, ws);
    double match = m0_ + m1_ * iw + m2_ * ws;
    double or_d = o0_ + o1_ * iw;
    double drive = total - match - or_d;
    if (drive < 0.0) {
        // Outside the calibrated region the remainder can go slightly
        // negative; clamp and fold into the match component.
        match += drive;
        drive = 0.0;
    }
    return {drive, match, or_d};
}

} // namespace cesp::vlsi
