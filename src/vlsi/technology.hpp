/**
 * @file
 * CMOS technology descriptions for the three feature sizes studied in
 * the paper (0.8 um, 0.35 um, 0.18 um). A Technology carries the
 * process parameters that the delay models need: the feature size, the
 * layout unit lambda (= feature/2), metal wire resistance and
 * capacitance per unit length, and the logic scaling factor relative
 * to the 0.18 um process.
 *
 * The wire RC values follow the paper's scaling model: metal wire
 * delay for a wire of fixed length *in lambda* is constant across
 * technologies (Section 4.4.3: "the delays are the same for the three
 * technologies since wire delays are constant according to the scaling
 * model assumed"). Metal capacitance per micron is held constant and
 * resistance per micron grows as the wire cross-section shrinks.
 */

#ifndef CESP_VLSI_TECHNOLOGY_HPP
#define CESP_VLSI_TECHNOLOGY_HPP

#include <string>
#include <vector>

namespace cesp::vlsi {

/** Identifiers for the three calibrated process generations. */
enum class Process
{
    um0_8,  //!< 0.8 um (lambda = 0.40 um)
    um0_35, //!< 0.35 um (lambda = 0.175 um)
    um0_18, //!< 0.18 um (lambda = 0.09 um)
};

/** All Process values, in descending feature size (paper order). */
const std::vector<Process> &allProcesses();

/** CMOS process parameters used by the delay models. */
struct Technology
{
    Process process;
    std::string name;       //!< e.g. "0.18um"
    double feature_um;      //!< drawn feature size in microns
    double lambda_um;       //!< layout unit: feature / 2
    double r_metal_ohm_um;  //!< metal resistance per micron of wire
    double c_metal_ff_um;   //!< metal capacitance per micron of wire
    /**
     * Gate (logic) delay scaling factor relative to the 0.18 um
     * process; pure logic paths scale proportionally to feature size.
     */
    double logic_scale;

    /**
     * Distributed-RC delay, in picoseconds, of a metal wire whose
     * length is given in lambda: 0.5 * R * C * L^2.
     */
    double wireDelayPs(double length_lambda) const;

    /** Wire length in microns for a length given in lambda. */
    double
    lambdaToUm(double length_lambda) const
    {
        return length_lambda * lambda_um;
    }
};

/** Look up the calibrated parameters for one of the three processes. */
const Technology &technology(Process p);

/**
 * Build a Technology for an arbitrary feature size (microns) by
 * scaling the calibrated 0.18 um process. Used by the design-space
 * exploration example to extrapolate below 0.18 um.
 */
Technology makeScaledTechnology(double feature_um);

} // namespace cesp::vlsi

#endif // CESP_VLSI_TECHNOLOGY_HPP
