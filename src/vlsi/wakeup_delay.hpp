/**
 * @file
 * Issue-window wakeup delay model (paper Section 4.2, Figures 5 and 6,
 * Table 2).
 *
 * The wakeup logic is a CAM: result tags are driven down tag lines
 * spanning the window, compared at each entry, and the per-tag match
 * lines are ORed into the ready flags. The delay decomposes as
 * Twakeup = Ttagdrive + Ttagmatch + TmatchOR (Section 4.2.2), where
 * the tag drive time is quadratic in window size with an issue-width-
 * dependent weight, and tag match / match OR are (nearly) linear in
 * issue width with only a weak window-size dependence.
 *
 * The total delay is the tensor quadratic through a 3x3 calibrated
 * anchor grid (issue widths 2/4/8 x window sizes 16/32/64) per
 * technology; tag match and match OR follow small parametric forms
 * and tag drive is the remainder. The anchors reproduce:
 *  - Table 2's wakeup contribution: 204.0 ps (4-way, 32) and 350.0 ps
 *    (8-way, 64) at 0.18 um, and the corresponding 0.35/0.8 um values
 *    implied jointly with the selection model;
 *  - Figure 5's growth at a 64-entry window: ~34% from 2- to 4-way and
 *    ~46% from 4- to 8-way;
 *  - Figure 6's scaling: the tag drive + tag match fraction of the
 *    total grows from ~52% at 0.8 um to ~65% at 0.18 um (8-way, 64).
 */

#ifndef CESP_VLSI_WAKEUP_DELAY_HPP
#define CESP_VLSI_WAKEUP_DELAY_HPP

#include "vlsi/interpolate.hpp"
#include "vlsi/technology.hpp"

namespace cesp::vlsi {

/** Component breakdown of the wakeup critical path, in ps. */
struct WakeupDelay
{
    double tag_drive;
    double tag_match;
    double match_or;

    double
    total() const
    {
        return tag_drive + tag_match + match_or;
    }
};

/** Calibrated wakeup delay model for one technology. */
class WakeupDelayModel
{
  public:
    explicit WakeupDelayModel(Process p);

    /**
     * Delay breakdown for the given issue width and window size.
     * Valid for issue widths in [1, 16] and window sizes in [8, 128];
     * anchored at issue widths 2/4/8 and window sizes 16/32/64.
     */
    WakeupDelay delay(int issue_width, int window_size) const;

    /** Total wakeup delay in ps. */
    double
    totalPs(int issue_width, int window_size) const
    {
        return delay(issue_width, window_size).total();
    }

    Process process() const { return process_; }

  private:
    Process process_;
    Quad2D total_;
    // Tag match: m0 + m1*IW + m2*WS. Match OR: o0 + o1*IW.
    double m0_, m1_, m2_, o0_, o1_;
};

} // namespace cesp::vlsi

#endif // CESP_VLSI_WAKEUP_DELAY_HPP
