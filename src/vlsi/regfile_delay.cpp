/**
 * @file
 * Implementation of the register file access-time model.
 *
 * Coefficients (0.18 um) are a fit in the style of Farkas et al.:
 * the decoder grows with log2 of the register count, the wordline
 * with the port count (cell width), the bitline with the register
 * count and, through the cell height, with the port count. Wire-
 * dominated terms scale across technologies like the wakeup model's
 * wire components; logic terms scale with feature size.
 */

#include "vlsi/regfile_delay.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace cesp::vlsi {

namespace {

// 0.18 um base coefficients (ps).
constexpr double kDecodeBase = 60.0;
constexpr double kDecodePerLog2Reg = 12.0;
constexpr double kWordlineBase = 30.0;
constexpr double kWordlinePerPort = 3.2;
constexpr double kBitlineBase = 40.0;
constexpr double kBitlinePerReg = 0.5;
constexpr double kBitlinePerRegPort = 0.05417;
constexpr double kSenseBase = 50.0;
constexpr double kSensePerPort = 0.5;

} // namespace

RegfileDelayModel::RegfileDelayModel(Process p) : process_(p)
{
    switch (p) {
      case Process::um0_8:
        logic_scale_ = 0.8 / 0.18;
        wire_scale_ = 2.9;
        break;
      case Process::um0_35:
        logic_scale_ = 0.35 / 0.18;
        wire_scale_ = 1.75;
        break;
      case Process::um0_18:
        logic_scale_ = 1.0;
        wire_scale_ = 1.0;
        break;
      default:
        panic("unknown process id %d", static_cast<int>(p));
    }
}

RegfileDelay
RegfileDelayModel::delay(int num_regs, int read_ports,
                         int write_ports) const
{
    if (num_regs < 8 || num_regs > 1024)
        fatal("regfile model: %d registers outside [8, 1024]",
              num_regs);
    if (read_ports < 1 || write_ports < 1 ||
        read_ports + write_ports > 64)
        fatal("regfile model: port counts %d+%d out of range",
              read_ports, write_ports);

    double ports = read_ports + write_ports;
    double regs = num_regs;

    RegfileDelay d;
    d.decode = logic_scale_ *
        (kDecodeBase + kDecodePerLog2Reg * std::log2(regs));
    d.wordline = logic_scale_ * kWordlineBase +
        wire_scale_ * kWordlinePerPort * ports;
    d.bitline = logic_scale_ * kBitlineBase +
        wire_scale_ *
            (kBitlinePerReg * regs + kBitlinePerRegPort * regs * ports);
    d.senseamp =
        logic_scale_ * (kSenseBase + kSensePerPort * ports);
    return d;
}

} // namespace cesp::vlsi
