/**
 * @file
 * Implementation of the bypass delay model.
 */

#include "vlsi/bypass_delay.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

double
BypassDelayModel::wireLengthLambda(int issue_width)
{
    if (issue_width < 1 || issue_width > 32)
        fatal("bypass delay model: issue width %d outside [1, 32]",
              issue_width);
    double iw = issue_width;
    // Fitted exactly to Table 1: L(4) = 20500, L(8) = 49000 lambda.
    return 4125.0 * iw + 250.0 * iw * iw;
}

double
BypassDelayModel::totalPs(int issue_width) const
{
    return tech_.wireDelayPs(wireLengthLambda(issue_width));
}

int
BypassDelayModel::numBypassPaths(int issue_width, int stages_after_result)
{
    if (issue_width < 1 || stages_after_result < 0)
        fatal("bypass paths: bad parameters IW=%d S=%d", issue_width,
              stages_after_result);
    // IW^2 * 2 * S paths for 2-input functional units (Section 4.4).
    return issue_width * issue_width * 2 * stages_after_result;
}

} // namespace cesp::vlsi
