/**
 * @file
 * Calibrated arbiter-cell delays for the selection model.
 */

#include "vlsi/select_delay.hpp"

#include "common/logging.hpp"

namespace cesp::vlsi {

SelectDelayModel::SelectDelayModel(Process p) : process_(p)
{
    switch (p) {
      case Process::um0_8:
        t_req_ = 500.0;
        t_grant_ = 500.0;
        t_root_ = 254.0;
        break;
      case Process::um0_35:
        t_req_ = 200.0;
        t_grant_ = 200.0;
        t_root_ = 118.3;
        break;
      case Process::um0_18:
        t_req_ = 80.0;
        t_grant_ = 80.0;
        t_root_ = 54.0;
        break;
      default:
        panic("unknown process id %d", static_cast<int>(p));
    }
}

int
SelectDelayModel::levels(int window_size)
{
    if (window_size < 2)
        fatal("selection delay model: window size %d < 2", window_size);
    int l = 1;
    int capacity = 4;
    while (capacity < window_size) {
        capacity *= 4;
        ++l;
    }
    return l;
}

SelectDelay
SelectDelayModel::delay(int window_size) const
{
    int l = levels(window_size);
    return {
        t_req_ * (l - 1),
        t_root_,
        t_grant_ * (l - 1),
    };
}

} // namespace cesp::vlsi
